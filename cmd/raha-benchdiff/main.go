// Command raha-benchdiff compares solver performance between two per-commit
// benchmark records (the BENCH_<commit>.json files ci.sh writes, which are
// `go test -json -bench` streams). It extracts every benchmark's custom
// metrics — nodes/sec (the branch-and-bound throughput figure the
// performance roadmap tracks), the fleet-sweep breadth figures cells/min
// and topos/min, bytes/solve (allocated heap per analysis, the memory
// figure the sparse-LP rewrite is pinned by), warmstarts/solve, and
// coldfallbacks/solve — and prints the old→new change side by side, with a
// warning for any regression beyond a tolerance.
//
//	raha-benchdiff BENCH_old.json BENCH_new.json
//
// Three regressions are flagged: a throughput drop beyond regressTol on any
// higher-is-better headline metric (nodes/sec, cells/min, topos/min,
// speedup-w4, parallel-efficiency, node-throughput-w4), growth beyond the
// same tolerance on a
// lower-is-better headline (bytes/solve), and a growing cold-fallback share
// (cold / (warm + cold)) — the silent failure mode where warm starts still
// "work" but more and more node LPs quietly fall back to cold two-phase
// solves.
//
// The comparison is advisory with one exception: single-iteration CI
// benchmarks are a smoke signal, not a statistically stable measurement, so
// throughput regressions print WARNING lines and the tool still exits 0.
// parallel-efficiency is the exception — when EVERY benchmark reporting it
// in both records drops beyond regressTol, a FAIL line prints and the tool
// exits 1. The all-of-them rule is what makes a single-pass gate sound: a
// genuine scheduler regression (lock contention, steal storms, a broken
// termination protocol) is global — it suppresses the parallel tier on
// every instance at once — while a wall-clock ratio on any one instance
// swings with search-order luck (a parallel search explores a slightly
// different tree each run). One instance down and the others steady is
// noise or a trade-off and stays a WARNING; all instances down is the
// scheduler. ci.sh runs the tool after each benchmark pass against the
// most recently committed BENCH file, which makes the per-PR perf
// trajectory visible and the parallel-search trajectory enforced.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// regressTol is the relative nodes/sec drop that triggers a warning line.
// Single-shot benchmark runs jitter well past a few percent; only a drop
// large enough to suggest a real change in solver behaviour is worth a
// human's attention.
const regressTol = 0.10

// coldShareTol and coldShareFloor gate the cold-fallback warning: the share
// of node LPs that fell back to a cold solve must have grown by more than
// coldShareTol percentage points AND ended above coldShareFloor. The floor
// keeps tiny absolute counts (one cold solve out of twenty) from tripping
// the warning on noise.
const (
	coldShareTol   = 0.10
	coldShareFloor = 0.05
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: raha-benchdiff OLD_BENCH.json NEW_BENCH.json")
		os.Exit(2)
	}
	oldM, err := parseFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "raha-benchdiff: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	newM, err := parseFile(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "raha-benchdiff: %s: %v\n", os.Args[2], err)
		os.Exit(1)
	}
	if report(os.Stdout, os.Args[1], os.Args[2], oldM, newM) {
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// testEvent is the subset of test2json's event schema the parser needs.
type testEvent struct {
	Action string
	Output string
}

// benchLine matches one completed benchmark result line; the -N GOMAXPROCS
// suffix is stripped so records taken on different machines still align.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$`)

// parseBench reads a `go test -json` stream and returns every metric per
// benchmark name — the standard ns/op plus any ReportMetric extras
// (nodes/sec, warmstarts/solve, ...). Output events may split a single
// benchmark line across several records (test2json flushes on partial
// writes), so the stream's output is reassembled before line parsing.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	var text strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("not a go-test JSON stream: %w", err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make(map[string]map[string]float64)
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		metrics := make(map[string]float64)
		// The tail is tab-separated "<value> <unit>" pairs.
		for _, field := range strings.Split(m[2], "\t") {
			parts := strings.Fields(strings.TrimSpace(field))
			if len(parts) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				continue
			}
			metrics[parts[1]] = v
		}
		if len(metrics) > 0 {
			out[m[1]] = metrics
		}
	}
	return out, nil
}

// diffMetric collects the old→new rows of one metric across the benchmarks
// present in both records, most-regressed first (lower = worse for
// higher-is-better metrics, which every diffed metric here is except the
// per-solve fallback counts — those are diffed for display, not sorted
// semantics).
type row struct {
	name     string
	old, new float64
	change   float64 // relative: +0.25 = 25% higher
}

func diffMetric(oldM, newM map[string]map[string]float64, metric string) []row {
	var rows []row
	for name, om := range oldM {
		nm, ok := newM[name]
		if !ok {
			continue
		}
		ov, o1 := om[metric]
		nv, n1 := nm[metric]
		if !o1 || !n1 || ov <= 0 {
			continue
		}
		rows = append(rows, row{name, ov, nv, nv/ov - 1})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].change != rows[j].change { //raha:lint-allow float-cmp sort tie-break on identical ratios is harmless
			return rows[i].change < rows[j].change
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// coldShare is cold / (warm + cold) for one benchmark's record, false when
// the metrics are absent or no node LP ran warm or cold at all.
func coldShare(m map[string]float64) (float64, bool) {
	warm, okW := m["warmstarts/solve"]
	cold, okC := m["coldfallbacks/solve"]
	if !okW || !okC || warm+cold <= 0 {
		return 0, false
	}
	return cold / (warm + cold), true
}

// headlineMetrics are the higher-is-better throughput figures diffed and
// regression-checked per benchmark: branch-and-bound node throughput, the
// fleet-sweep breadth figures (grid cells and topologies analyzed per
// minute, from BenchmarkFleetSweep), and the worker-pool scaling figures
// (speedup@4 and speedup@4 / 4, from the *Scaling benchmarks).
var headlineMetrics = []string{"nodes/sec", "cells/min", "topos/min", "speedup-w4", "parallel-efficiency", "node-throughput-w4"}

// hardFailMetric is the one headline figure the comparison is NOT advisory
// about: when every benchmark reporting parallel-efficiency in both records
// drops beyond regressTol, the process exits 1. Per-instance wall ratios
// swing with search-order luck, so one instance regressing alone is only a
// WARNING — but a real scheduler regression hits every instance, and that
// unanimous signature is stable enough to gate a single CI pass on.
// (node-throughput-w4 stays advisory: it isolates scheduler overhead from
// tree-size effects and is the first figure to read when the gate fires.)
const hardFailMetric = "parallel-efficiency"

// lowerBetterMetrics are the headline figures where DOWN is good: allocated
// bytes per analysis (from the Analyze* benchmarks). They get the same
// per-benchmark diff table and the same regressTol advisory warning, with
// the sign flipped — growth is the regression.
var lowerBetterMetrics = []string{"bytes/solve"}

// newMetricNotes lists what the new record measures that the old one does
// not: whole benchmarks without a baseline, and new metrics on existing
// benchmarks. Without the note, a freshly added metric would be silently
// absent from every diff table and look like it was measured and unchanged.
func newMetricNotes(oldM, newM map[string]map[string]float64) []string {
	var notes []string
	for name, nm := range newM {
		om, ok := oldM[name]
		if !ok {
			notes = append(notes, fmt.Sprintf("note: new benchmark %s (no baseline in old record)", name))
			continue
		}
		for metric := range nm {
			if _, ok := om[metric]; !ok {
				notes = append(notes, fmt.Sprintf("note: new metric %s on %s (no baseline in old record)", metric, name))
			}
		}
	}
	sort.Strings(notes)
	return notes
}

// report prints the old→new comparison for every benchmark present in both
// records: one table per headline throughput metric, then the warm-start
// metrics, then warnings for throughput regressions and growing
// cold-fallback shares. It returns true when the hard-fail gate tripped
// (every benchmark reporting parallel-efficiency dropped beyond tolerance),
// which main converts to exit status 1. The body renders into a builder (whose writes cannot fail) and
// flushes once; a failed flush is reported on stderr but does not affect
// the gate.
func report(out io.Writer, oldPath, newPath string, oldM, newM map[string]map[string]float64) bool {
	w := &strings.Builder{}
	failed := writeReport(w, oldPath, newPath, oldM, newM)
	if _, err := io.WriteString(out, w.String()); err != nil {
		fmt.Fprintln(os.Stderr, "raha-benchdiff:", err)
	}
	return failed
}

func writeReport(w *strings.Builder, oldPath, newPath string, oldM, newM map[string]map[string]float64) (failed bool) {
	tables := 0
	for _, metric := range append(append([]string{}, headlineMetrics...), lowerBetterMetrics...) {
		rows := diffMetric(oldM, newM, metric)
		if len(rows) == 0 {
			continue
		}
		tables++
		fmt.Fprintf(w, "benchdiff %s -> %s (%s)\n", oldPath, newPath, metric)
		for _, r := range rows {
			fmt.Fprintf(w, "  %-36s %10.1f -> %10.1f  %+6.1f%%\n", r.name, r.old, r.new, 100*r.change)
		}
	}
	notes := newMetricNotes(oldM, newM)
	if tables == 0 {
		fmt.Fprintf(w, "benchdiff: no common throughput benchmarks between %s and %s\n", oldPath, newPath)
		for _, n := range notes {
			fmt.Fprintln(w, n)
		}
		return false
	}
	for _, n := range notes {
		fmt.Fprintln(w, n)
	}
	for _, metric := range []string{"warmstarts/solve", "coldfallbacks/solve"} {
		rows := diffMetric(oldM, newM, metric)
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "benchdiff %s -> %s (%s)\n", oldPath, newPath, metric)
		for _, r := range rows {
			fmt.Fprintf(w, "  %-36s %10.1f -> %10.1f  %+6.1f%%\n", r.name, r.old, r.new, 100*r.change)
		}
	}

	for _, metric := range headlineMetrics {
		rows := diffMetric(oldM, newM, metric)
		var regressed []row
		for _, r := range rows {
			if r.change < -regressTol {
				regressed = append(regressed, r)
			}
		}
		if metric == hardFailMetric && len(rows) > 0 && len(regressed) == len(rows) {
			// Unanimous: every instance's parallel tier got worse. That is
			// the scheduler, not search-order luck on one instance.
			failed = true
			for _, r := range regressed {
				fmt.Fprintf(w, "FAIL: %s %s regressed %.1f%% vs the last committed record — every scaling benchmark regressed together; this is a scheduler regression\n",
					r.name, metric, -100*r.change)
			}
			continue
		}
		for _, r := range regressed {
			fmt.Fprintf(w, "WARNING: %s %s regressed %.1f%% vs the last committed record (advisory; single-shot CI benchmarks are noisy)\n",
				r.name, metric, -100*r.change)
		}
	}
	for _, metric := range lowerBetterMetrics {
		for _, r := range diffMetric(oldM, newM, metric) {
			if r.change > regressTol {
				fmt.Fprintf(w, "WARNING: %s %s grew %.1f%% vs the last committed record (advisory; single-shot CI benchmarks are noisy)\n",
					r.name, metric, 100*r.change)
			}
		}
	}
	// The silent warm-start failure mode: throughput may look fine while an
	// increasing share of node LPs falls back to cold two-phase solves.
	var names []string
	for name := range oldM {
		if _, ok := newM[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		oldShare, ok1 := coldShare(oldM[name])
		newShare, ok2 := coldShare(newM[name])
		if !ok1 || !ok2 {
			continue
		}
		if newShare > oldShare+coldShareTol && newShare > coldShareFloor {
			fmt.Fprintf(w, "WARNING: %s cold-fallback share grew %.1f%% -> %.1f%% of node LPs — warm starts are silently degrading (advisory)\n",
				name, 100*oldShare, 100*newShare)
		}
	}
	return failed
}
