// Command raha-benchdiff compares solver throughput between two per-commit
// benchmark records (the BENCH_<commit>.json files ci.sh writes, which are
// `go test -json -bench` streams). It extracts every benchmark's nodes/sec
// metric — the branch-and-bound throughput figure the performance roadmap
// tracks — and prints the old→new change side by side, with a warning for
// any regression beyond a tolerance.
//
//	raha-benchdiff BENCH_old.json BENCH_new.json
//
// The comparison is advisory: single-iteration CI benchmarks are a smoke
// signal, not a statistically stable measurement, so the tool always exits
// 0 when both files parse. ci.sh runs it after each benchmark pass against
// the most recently committed BENCH file, which makes the per-PR perf
// trajectory visible without ever failing a build over benchmark noise.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// regressTol is the relative nodes/sec drop that triggers a warning line.
// Single-shot benchmark runs jitter well past a few percent; only a drop
// large enough to suggest a real change in solver behaviour is worth a
// human's attention.
const regressTol = 0.10

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: raha-benchdiff OLD_BENCH.json NEW_BENCH.json")
		os.Exit(2)
	}
	oldM, err := parseFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "raha-benchdiff: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	newM, err := parseFile(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "raha-benchdiff: %s: %v\n", os.Args[2], err)
		os.Exit(1)
	}
	report(os.Stdout, os.Args[1], os.Args[2], oldM, newM)
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// testEvent is the subset of test2json's event schema the parser needs.
type testEvent struct {
	Action string
	Output string
}

// benchLine matches one completed benchmark result line; the -N GOMAXPROCS
// suffix is stripped so records taken on different machines still align.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$`)

// nodesPerSec extracts the "<value> nodes/sec" metric from a result line's
// tail, if present.
var nodesPerSec = regexp.MustCompile(`([0-9][0-9.eE+-]*) nodes/sec`)

// parseBench reads a `go test -json` stream and returns the nodes/sec
// metric per benchmark name. Output events may split a single benchmark
// line across several records (test2json flushes on partial writes), so
// the stream's output is reassembled before line parsing.
func parseBench(r io.Reader) (map[string]float64, error) {
	var text strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("not a go-test JSON stream: %w", err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make(map[string]float64)
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		nm := nodesPerSec.FindStringSubmatch(m[2])
		if nm == nil {
			continue
		}
		v, err := strconv.ParseFloat(nm[1], 64)
		if err != nil {
			continue
		}
		out[m[1]] = v
	}
	return out, nil
}

// report prints the old→new comparison for every benchmark present in both
// records, most-regressed first, followed by a warning per regression
// beyond regressTol.
func report(w io.Writer, oldPath, newPath string, oldM, newM map[string]float64) {
	type row struct {
		name     string
		old, new float64
		change   float64 // relative: +0.25 = 25% faster
	}
	var rows []row
	for name, ov := range oldM {
		nv, ok := newM[name]
		if !ok || ov <= 0 {
			continue
		}
		rows = append(rows, row{name, ov, nv, nv/ov - 1})
	}
	if len(rows) == 0 {
		fmt.Fprintf(w, "benchdiff: no common nodes/sec benchmarks between %s and %s\n", oldPath, newPath)
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].change != rows[j].change { //raha:lint-allow float-cmp sort tie-break on identical ratios is harmless
			return rows[i].change < rows[j].change
		}
		return rows[i].name < rows[j].name
	})

	fmt.Fprintf(w, "benchdiff %s -> %s (nodes/sec)\n", oldPath, newPath)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-36s %10.1f -> %10.1f  %+6.1f%%\n", r.name, r.old, r.new, 100*r.change)
	}
	for _, r := range rows {
		if r.change < -regressTol {
			fmt.Fprintf(w, "WARNING: %s throughput regressed %.1f%% vs the last committed record (advisory; single-shot CI benchmarks are noisy)\n",
				r.name, -100*r.change)
		}
	}
}
