package main

import (
	"math"
	"strings"
	"testing"
)

// benchStream builds a minimal go-test-JSON stream from output fragments,
// mimicking test2json: each fragment becomes one Output event, and a single
// benchmark line may span several fragments.
func benchStream(fragments ...string) string {
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"raha/internal/metaopt"}` + "\n")
	for _, f := range fragments {
		b.WriteString(`{"Action":"output","Package":"raha/internal/metaopt","Output":` + quote(f) + `}` + "\n")
	}
	b.WriteString(`{"Action":"pass","Package":"raha/internal/metaopt","Elapsed":1.5}` + "\n")
	return b.String()
}

func quote(s string) string {
	r := strings.NewReplacer("\n", `\n`, "\t", `\t`, `"`, `\"`)
	return `"` + r.Replace(s) + `"`
}

func mustParse(t *testing.T, stream string) map[string]map[string]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(stream))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	return m
}

func metric(t *testing.T, m map[string]map[string]float64, bench, name string) float64 {
	t.Helper()
	bm, ok := m[bench]
	if !ok {
		t.Fatalf("benchmark %s missing from %v", bench, m)
	}
	v, ok := bm[name]
	if !ok {
		t.Fatalf("%s has no %s metric: %v", bench, name, bm)
	}
	return v
}

func TestParseBenchExtractsMetrics(t *testing.T) {
	stream := benchStream(
		"goos: linux\n",
		"BenchmarkAnalyzeB4Serial\t       1\t3086000000 ns/op\t499.4 nodes/sec\t1542 nodes/solve\t2137 warmstarts/solve\t12 coldfallbacks/solve\n",
		"BenchmarkAnalyzeB4Parallel-8\t       1\t2261000000 ns/op\t682.1 nodes/sec\n",
		"BenchmarkOnlyNsOp\t       5\t100 ns/op\n",
		"PASS\n",
	)
	m := mustParse(t, stream)
	if v := metric(t, m, "BenchmarkAnalyzeB4Serial", "nodes/sec"); math.Abs(v-499.4) > 1e-9 {
		t.Errorf("B4Serial nodes/sec = %g, want 499.4", v)
	}
	if v := metric(t, m, "BenchmarkAnalyzeB4Serial", "warmstarts/solve"); math.Abs(v-2137) > 1e-9 {
		t.Errorf("B4Serial warmstarts/solve = %g, want 2137", v)
	}
	if v := metric(t, m, "BenchmarkAnalyzeB4Serial", "coldfallbacks/solve"); math.Abs(v-12) > 1e-9 {
		t.Errorf("B4Serial coldfallbacks/solve = %g, want 12", v)
	}
	// The -8 GOMAXPROCS suffix must be stripped so names align across records.
	if v := metric(t, m, "BenchmarkAnalyzeB4Parallel", "nodes/sec"); math.Abs(v-682.1) > 1e-9 {
		t.Errorf("B4Parallel nodes/sec = %g under the suffix-free name, want 682.1", v)
	}
	// Benchmarks without custom metrics still parse (ns/op is a metric too).
	if v := metric(t, m, "BenchmarkOnlyNsOp", "ns/op"); math.Abs(v-100) > 1e-9 {
		t.Errorf("OnlyNsOp ns/op = %g, want 100", v)
	}
}

// TestParseBenchReassemblesSplitLines pins the real-world quirk that makes
// the parser reassemble the stream first: go test -json can flush a single
// benchmark result line across several Output events — including splits in
// the middle of a metric unit.
func TestParseBenchReassemblesSplitLines(t *testing.T) {
	stream := benchStream(
		"BenchmarkAnalyzeUninettSerial\t       1\t",
		"20800000000 ns/op\t477.9 node",
		"s/sec\t9939 nodes/solve\t81 warmsta",
		"rts/solve\t3 coldfallbacks/solve\n",
	)
	m := mustParse(t, stream)
	if v := metric(t, m, "BenchmarkAnalyzeUninettSerial", "nodes/sec"); math.Abs(v-477.9) > 1e-9 {
		t.Fatalf("split-line nodes/sec = %g, want 477.9 (map %v)", v, m)
	}
	if v := metric(t, m, "BenchmarkAnalyzeUninettSerial", "warmstarts/solve"); math.Abs(v-81) > 1e-9 {
		t.Fatalf("split-line warmstarts/solve = %g, want 81 (map %v)", v, m)
	}
	if v := metric(t, m, "BenchmarkAnalyzeUninettSerial", "coldfallbacks/solve"); math.Abs(v-3) > 1e-9 {
		t.Fatalf("split-line coldfallbacks/solve = %g, want 3 (map %v)", v, m)
	}
}

func TestParseBenchRejectsNonJSON(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkFoo\t1\t100 ns/op\n")); err == nil {
		t.Fatal("plain-text bench output accepted; want a parse error")
	}
}

func TestReportWarnsOnRegression(t *testing.T) {
	ns := func(v float64) map[string]float64 { return map[string]float64{"nodes/sec": v} }
	oldM := map[string]map[string]float64{
		"BenchmarkA": ns(1000), // -50%: warn
		"BenchmarkB": ns(1000), // +20%: no warn
		"BenchmarkC": ns(1000), // -5%: inside tolerance, no warn
		"BenchmarkD": ns(1000), // missing from new: skipped
	}
	newM := map[string]map[string]float64{
		"BenchmarkA": ns(500),
		"BenchmarkB": ns(1200),
		"BenchmarkC": ns(950),
		"BenchmarkE": ns(100), // missing from old: no diff row, just a note
	}
	var buf strings.Builder
	report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	for _, want := range []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "-50.0%", "+20.0%",
		"note: new benchmark BenchmarkE"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "BenchmarkD") {
		t.Errorf("report mentions BenchmarkD, which is gone from the new record:\n%s", out)
	}
	if n := strings.Count(out, "WARNING:"); n != 1 {
		t.Errorf("got %d warnings, want exactly 1 (for BenchmarkA):\n%s", n, out)
	}
	if !strings.Contains(out, "WARNING: BenchmarkA") {
		t.Errorf("warning not attributed to BenchmarkA:\n%s", out)
	}
	// Most-regressed row first.
	if ia, ib := strings.Index(out, "BenchmarkA"), strings.Index(out, "BenchmarkB"); ia > ib {
		t.Errorf("rows not sorted most-regressed first:\n%s", out)
	}
}

// TestReportWarnsOnColdFallbackGrowth pins the silent-regression detector:
// nodes/sec holds steady but the share of node LPs falling back to cold
// two-phase solves grows past the tolerance.
func TestReportWarnsOnColdFallbackGrowth(t *testing.T) {
	rec := func(nodesSec, warm, cold float64) map[string]float64 {
		return map[string]float64{"nodes/sec": nodesSec, "warmstarts/solve": warm, "coldfallbacks/solve": cold}
	}
	oldM := map[string]map[string]float64{
		"BenchmarkGrew":   rec(1000, 99, 1),  // share 1%
		"BenchmarkStable": rec(1000, 90, 10), // share 10%
		"BenchmarkTiny":   rec(1000, 99, 1),  // grows, but stays under the floor
	}
	newM := map[string]map[string]float64{
		"BenchmarkGrew":   rec(1010, 60, 40), // share 40%: warn despite steady throughput
		"BenchmarkStable": rec(990, 88, 12),  // share 12%: inside tolerance
		"BenchmarkTiny":   rec(1000, 96, 4),  // share 4% < floor: no warn
	}
	var buf strings.Builder
	report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	if !strings.Contains(out, "WARNING: BenchmarkGrew cold-fallback share grew") {
		t.Errorf("missing cold-fallback warning for BenchmarkGrew:\n%s", out)
	}
	if n := strings.Count(out, "WARNING:"); n != 1 {
		t.Errorf("got %d warnings, want exactly 1:\n%s", n, out)
	}
	// The per-solve warm metrics get their own diff tables.
	if !strings.Contains(out, "(warmstarts/solve)") || !strings.Contains(out, "(coldfallbacks/solve)") {
		t.Errorf("missing warm-start metric tables:\n%s", out)
	}
}

// TestReportDiffsSweepThroughput pins the fleet-sweep breadth metrics:
// cells/min and topos/min get their own diff tables and the same >10%
// advisory regression warning as nodes/sec — even in a record with no
// nodes/sec benchmarks at all.
func TestReportDiffsSweepThroughput(t *testing.T) {
	sweep := func(cells, topos float64) map[string]float64 {
		return map[string]float64{"cells/min": cells, "topos/min": topos}
	}
	oldM := map[string]map[string]float64{
		"BenchmarkFleetSweep": sweep(600, 75), // cells/min -50%: warn
	}
	newM := map[string]map[string]float64{
		"BenchmarkFleetSweep": sweep(300, 74), // topos/min -1.3%: quiet
	}
	var buf strings.Builder
	report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	for _, want := range []string{"(cells/min)", "(topos/min)", "-50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "WARNING:"); n != 1 {
		t.Errorf("got %d warnings, want exactly 1 (cells/min):\n%s", n, out)
	}
	if !strings.Contains(out, "WARNING: BenchmarkFleetSweep cells/min regressed") {
		t.Errorf("warning not attributed to the cells/min metric:\n%s", out)
	}
}

func TestReportNoCommonBenchmarks(t *testing.T) {
	var buf strings.Builder
	report(&buf, "old.json", "new.json",
		map[string]map[string]float64{"A": {"nodes/sec": 1}},
		map[string]map[string]float64{"B": {"nodes/sec": 2}})
	if !strings.Contains(buf.String(), "no common") {
		t.Fatalf("missing no-common-benchmarks notice: %s", buf.String())
	}
	// The new benchmark still gets its note even with nothing to diff —
	// otherwise a renamed benchmark silently drops out of the record.
	if !strings.Contains(buf.String(), "note: new benchmark B") {
		t.Fatalf("missing new-benchmark note: %s", buf.String())
	}
}

// TestReportNewMetricNotes pins the "new metric" note: a metric present in
// the new record but absent from the old (a freshly instrumented figure,
// e.g. parallel-efficiency) is called out instead of silently missing from
// every diff table.
func TestReportNewMetricNotes(t *testing.T) {
	oldM := map[string]map[string]float64{
		"BenchmarkB4Scaling": {"nodes/sec": 1000},
	}
	newM := map[string]map[string]float64{
		"BenchmarkB4Scaling":      {"nodes/sec": 1010, "parallel-efficiency": 0.25},
		"BenchmarkUninettScaling": {"parallel-efficiency": 0.4},
	}
	var buf strings.Builder
	report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	if !strings.Contains(out, "note: new metric parallel-efficiency on BenchmarkB4Scaling") {
		t.Errorf("missing new-metric note:\n%s", out)
	}
	if !strings.Contains(out, "note: new benchmark BenchmarkUninettScaling") {
		t.Errorf("missing new-benchmark note:\n%s", out)
	}
	if n := strings.Count(out, "note:"); n != 2 {
		t.Errorf("got %d notes, want 2:\n%s", n, out)
	}
}

// TestReportHardFailsOnEfficiencyRegression pins the one non-advisory gate:
// when EVERY benchmark reporting parallel-efficiency drops beyond the
// tolerance, each gets a FAIL line (not a WARNING) and report returns true,
// which main converts to exit status 1. The unanimity requirement is what
// lets a single-pass gate exist at all: a real scheduler regression is
// global, while one instance's wall ratio swings with search-order luck.
func TestReportHardFailsOnEfficiencyRegression(t *testing.T) {
	oldM := map[string]map[string]float64{
		"BenchmarkB4Scaling":      {"parallel-efficiency": 0.50},
		"BenchmarkUninettScaling": {"parallel-efficiency": 0.30},
	}
	newM := map[string]map[string]float64{
		"BenchmarkB4Scaling":      {"parallel-efficiency": 0.25},
		"BenchmarkUninettScaling": {"parallel-efficiency": 0.10},
	}
	var buf strings.Builder
	failed := report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	if !strings.Contains(out, "(parallel-efficiency)") {
		t.Errorf("missing parallel-efficiency diff table:\n%s", out)
	}
	if !strings.Contains(out, "FAIL: BenchmarkB4Scaling parallel-efficiency regressed") ||
		!strings.Contains(out, "FAIL: BenchmarkUninettScaling parallel-efficiency regressed") {
		t.Errorf("missing FAIL lines:\n%s", out)
	}
	if strings.Contains(out, "WARNING: BenchmarkB4Scaling parallel-efficiency") {
		t.Errorf("unanimous efficiency regression must FAIL, not warn:\n%s", out)
	}
	if !failed {
		t.Error("report returned false; the efficiency gate must request exit 1")
	}
}

// TestReportSingleInstanceEfficiencyDropStaysAdvisory pins the gate's noise
// immunity: one scaling benchmark regressing while another holds (or
// improves) is a search-order or trade-off signature, not a scheduler
// regression — it warns and exits 0.
func TestReportSingleInstanceEfficiencyDropStaysAdvisory(t *testing.T) {
	oldM := map[string]map[string]float64{
		"BenchmarkB4Scaling":      {"parallel-efficiency": 0.50},
		"BenchmarkUninettScaling": {"parallel-efficiency": 0.30},
	}
	newM := map[string]map[string]float64{
		"BenchmarkB4Scaling":      {"parallel-efficiency": 0.20}, // -60%
		"BenchmarkUninettScaling": {"parallel-efficiency": 0.35}, // improvement
	}
	var buf strings.Builder
	failed := report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	if !strings.Contains(out, "WARNING: BenchmarkB4Scaling parallel-efficiency regressed") {
		t.Errorf("missing advisory warning for the regressed instance:\n%s", out)
	}
	if strings.Contains(out, "FAIL:") {
		t.Errorf("non-unanimous regression must stay advisory:\n%s", out)
	}
	if failed {
		t.Error("non-unanimous efficiency regression must not request exit 1")
	}
}

// TestReportDiffsNodeThroughput pins node-throughput-w4 as an advisory
// headline metric: it rides the diff tables and warns on regression, but
// never fails the build — it is the diagnostic to read when the
// parallel-efficiency gate fires, not a gate itself.
func TestReportDiffsNodeThroughput(t *testing.T) {
	oldM := map[string]map[string]float64{
		"BenchmarkB4Scaling": {"node-throughput-w4": 1.0},
	}
	newM := map[string]map[string]float64{
		"BenchmarkB4Scaling": {"node-throughput-w4": 0.5},
	}
	var buf strings.Builder
	failed := report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	if !strings.Contains(out, "(node-throughput-w4)") {
		t.Errorf("missing node-throughput-w4 diff table:\n%s", out)
	}
	if !strings.Contains(out, "WARNING: BenchmarkB4Scaling node-throughput-w4 regressed") {
		t.Errorf("missing advisory warning:\n%s", out)
	}
	if failed {
		t.Error("node-throughput-w4 regression must stay advisory (exit 0)")
	}
}

// TestReportEfficiencyWithinToleranceExitsClean pins the gate's other side:
// an inside-tolerance dip (or an improvement) stays exit-0 with no FAIL
// line, so benchmark noise cannot fail a build.
func TestReportEfficiencyWithinToleranceExitsClean(t *testing.T) {
	oldM := map[string]map[string]float64{
		"BenchmarkB4Scaling":      {"parallel-efficiency": 0.50},
		"BenchmarkUninettScaling": {"parallel-efficiency": 0.30},
	}
	newM := map[string]map[string]float64{
		"BenchmarkB4Scaling":      {"parallel-efficiency": 0.47}, // -6%: inside tolerance
		"BenchmarkUninettScaling": {"parallel-efficiency": 0.60}, // improvement
	}
	var buf strings.Builder
	if report(&buf, "old.json", "new.json", oldM, newM) {
		t.Errorf("inside-tolerance efficiency dip requested exit 1:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "FAIL:") {
		t.Errorf("unexpected FAIL line:\n%s", buf.String())
	}
}

// TestReportDiffsSpeedupAdvisory pins speedup-w4 as a headline metric with
// the ordinary advisory treatment: diff table plus WARNING, never FAIL —
// only the efficiency ratio is load-bearing enough to gate on.
func TestReportDiffsSpeedupAdvisory(t *testing.T) {
	oldM := map[string]map[string]float64{
		"BenchmarkB4Scaling": {"speedup-w4": 2.0},
	}
	newM := map[string]map[string]float64{
		"BenchmarkB4Scaling": {"speedup-w4": 1.0},
	}
	var buf strings.Builder
	failed := report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	if !strings.Contains(out, "(speedup-w4)") {
		t.Errorf("missing speedup-w4 diff table:\n%s", out)
	}
	if !strings.Contains(out, "WARNING: BenchmarkB4Scaling speedup-w4 regressed") {
		t.Errorf("missing advisory warning:\n%s", out)
	}
	if failed {
		t.Error("speedup-w4 regression must stay advisory (exit 0)")
	}
}

// TestReportDiffsBytesPerSolve pins bytes/solve as the lower-is-better
// headline metric: it gets its own diff table, and the advisory warning
// fires on growth past the tolerance — the sign opposite to the
// throughput metrics.
func TestReportDiffsBytesPerSolve(t *testing.T) {
	mem := func(v float64) map[string]float64 { return map[string]float64{"bytes/solve": v} }
	oldM := map[string]map[string]float64{
		"BenchmarkAnalyzeGrew":   mem(1_000_000), // +50%: warn
		"BenchmarkAnalyzeStable": mem(1_000_000), // +5%: inside tolerance, quiet
		"BenchmarkAnalyzeShrank": mem(1_000_000), // -99%: an improvement, quiet
	}
	newM := map[string]map[string]float64{
		"BenchmarkAnalyzeGrew":   mem(1_500_000),
		"BenchmarkAnalyzeStable": mem(1_050_000),
		"BenchmarkAnalyzeShrank": mem(10_000),
	}
	var buf strings.Builder
	report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	if !strings.Contains(out, "(bytes/solve)") {
		t.Errorf("missing bytes/solve diff table:\n%s", out)
	}
	if !strings.Contains(out, "WARNING: BenchmarkAnalyzeGrew bytes/solve grew 50.0%") {
		t.Errorf("missing growth warning for BenchmarkAnalyzeGrew:\n%s", out)
	}
	if n := strings.Count(out, "WARNING:"); n != 1 {
		t.Errorf("got %d warnings, want exactly 1 (growth only; shrinking memory is the goal):\n%s", n, out)
	}
	// The table itself still shows the improvement row.
	if !strings.Contains(out, "BenchmarkAnalyzeShrank") || !strings.Contains(out, "-99.0%") {
		t.Errorf("improvement row missing from the bytes/solve table:\n%s", out)
	}
}
