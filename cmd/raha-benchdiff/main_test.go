package main

import (
	"math"
	"strings"
	"testing"
)

// benchStream builds a minimal go-test-JSON stream from output fragments,
// mimicking test2json: each fragment becomes one Output event, and a single
// benchmark line may span several fragments.
func benchStream(fragments ...string) string {
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"raha/internal/metaopt"}` + "\n")
	for _, f := range fragments {
		b.WriteString(`{"Action":"output","Package":"raha/internal/metaopt","Output":` + quote(f) + `}` + "\n")
	}
	b.WriteString(`{"Action":"pass","Package":"raha/internal/metaopt","Elapsed":1.5}` + "\n")
	return b.String()
}

func quote(s string) string {
	r := strings.NewReplacer("\n", `\n`, "\t", `\t`, `"`, `\"`)
	return `"` + r.Replace(s) + `"`
}

func mustParse(t *testing.T, stream string) map[string]float64 {
	t.Helper()
	m, err := parseBench(strings.NewReader(stream))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	return m
}

func TestParseBenchExtractsNodesPerSec(t *testing.T) {
	stream := benchStream(
		"goos: linux\n",
		"BenchmarkAnalyzeB4Serial\t       1\t3086000000 ns/op\t499.4 nodes/sec\t1542 nodes/solve\t2137 warmstarts/solve\t0 coldfallbacks/solve\n",
		"BenchmarkAnalyzeB4Parallel-8\t       1\t2261000000 ns/op\t682.1 nodes/sec\n",
		"BenchmarkNoMetric\t       5\t100 ns/op\n",
		"PASS\n",
	)
	m := mustParse(t, stream)
	if len(m) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %v", len(m), m)
	}
	if v := m["BenchmarkAnalyzeB4Serial"]; math.Abs(v-499.4) > 1e-9 {
		t.Errorf("B4Serial = %g, want 499.4", v)
	}
	// The -8 GOMAXPROCS suffix must be stripped so names align across records.
	if v, ok := m["BenchmarkAnalyzeB4Parallel"]; !ok || math.Abs(v-682.1) > 1e-9 {
		t.Errorf("B4Parallel = %g (present=%v), want 682.1 under the suffix-free name", v, ok)
	}
}

// TestParseBenchReassemblesSplitLines pins the real-world quirk that makes
// the parser reassemble the stream first: go test -json can flush a single
// benchmark result line across several Output events.
func TestParseBenchReassemblesSplitLines(t *testing.T) {
	stream := benchStream(
		"BenchmarkAnalyzeUninettSerial\t       1\t",
		"20800000000 ns/op\t477.9 node",
		"s/sec\t9939 nodes/solve\n",
	)
	m := mustParse(t, stream)
	if v := m["BenchmarkAnalyzeUninettSerial"]; math.Abs(v-477.9) > 1e-9 {
		t.Fatalf("split-line benchmark = %g, want 477.9 (map %v)", v, m)
	}
}

func TestParseBenchRejectsNonJSON(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkFoo\t1\t100 ns/op\n")); err == nil {
		t.Fatal("plain-text bench output accepted; want a parse error")
	}
}

func TestReportWarnsOnRegression(t *testing.T) {
	oldM := map[string]float64{
		"BenchmarkA": 1000, // -50%: warn
		"BenchmarkB": 1000, // +20%: no warn
		"BenchmarkC": 1000, // -5%: inside tolerance, no warn
		"BenchmarkD": 1000, // missing from new: skipped
	}
	newM := map[string]float64{
		"BenchmarkA": 500,
		"BenchmarkB": 1200,
		"BenchmarkC": 950,
		"BenchmarkE": 100, // missing from old: skipped
	}
	var buf strings.Builder
	report(&buf, "old.json", "new.json", oldM, newM)
	out := buf.String()

	for _, want := range []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "-50.0%", "+20.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	for _, absent := range []string{"BenchmarkD", "BenchmarkE"} {
		if strings.Contains(out, absent) {
			t.Errorf("report mentions %s, which has no counterpart:\n%s", absent, out)
		}
	}
	if n := strings.Count(out, "WARNING:"); n != 1 {
		t.Errorf("got %d warnings, want exactly 1 (for BenchmarkA):\n%s", n, out)
	}
	if !strings.Contains(out, "WARNING: BenchmarkA") {
		t.Errorf("warning not attributed to BenchmarkA:\n%s", out)
	}
	// Most-regressed row first.
	if ia, ib := strings.Index(out, "BenchmarkA"), strings.Index(out, "BenchmarkB"); ia > ib {
		t.Errorf("rows not sorted most-regressed first:\n%s", out)
	}
}

func TestReportNoCommonBenchmarks(t *testing.T) {
	var buf strings.Builder
	report(&buf, "old.json", "new.json", map[string]float64{"A": 1}, map[string]float64{"B": 2})
	if !strings.Contains(buf.String(), "no common") {
		t.Fatalf("missing no-common-benchmarks notice: %s", buf.String())
	}
}
