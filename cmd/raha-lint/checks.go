package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Rule names, as reported and as accepted by //raha:lint-allow directives.
const (
	ruleFloatCmp    = "float-cmp"
	ruleHotLoopTime = "hot-loop-time"
	ruleCtxFirst    = "ctx-first"
	ruleMutexValue  = "mutex-value"
	ruleTracerGuard = "tracer-guard"
)

// finding is one lint violation.
type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.rule, f.msg)
}

// solverPkgs are the hot-path packages where wall-clock and randomness are
// banned inside loops (the determinism and reproducibility contract of the
// solver stack; see DESIGN.md).
var solverPkgs = map[string]bool{
	"raha/internal/lp":   true,
	"raha/internal/milp": true,
}

// lintPackage runs every rule over one type-checked package and returns the
// surviving findings sorted by position.
func lintPackage(p *pkg) []finding {
	l := &linter{p: p, allowed: collectAllows(p)}
	for _, f := range p.Files {
		l.file(f)
	}
	out := l.findings[:0]
	for _, f := range l.findings {
		if !l.allowed[allowKey{f.pos.Filename, f.pos.Line, f.rule}] {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

type allowKey struct {
	file string
	line int
	rule string
}

// collectAllows indexes //raha:lint-allow directives. A directive suppresses
// the named rule on its own line (trailing comment) and on the next line
// (comment above the offending statement). Anything after the rule name is
// the required human-readable justification.
func collectAllows(p *pkg) map[allowKey]bool {
	allowed := map[allowKey]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//raha:lint-allow ")
				if !ok {
					continue
				}
				rule, _, _ := strings.Cut(strings.TrimSpace(text), " ")
				pos := p.Fset.Position(c.Pos())
				allowed[allowKey{pos.Filename, pos.Line, rule}] = true
				allowed[allowKey{pos.Filename, pos.Line + 1, rule}] = true
			}
		}
	}
	return allowed
}

type linter struct {
	p        *pkg
	allowed  map[allowKey]bool
	findings []finding
}

func (l *linter) report(pos token.Pos, rule, format string, args ...any) {
	l.findings = append(l.findings, finding{
		pos:  l.p.Fset.Position(pos),
		rule: rule,
		msg:  fmt.Sprintf(format, args...),
	})
}

// file walks one file with an explicit ancestor stack so rules can inspect
// enclosing loops, conditionals, and function declarations.
func (l *linter) file(f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.BinaryExpr:
			l.floatCmp(n)
		case *ast.CallExpr:
			l.hotLoopTime(n, stack)
			l.tracerGuard(n, stack)
		case *ast.FuncDecl:
			l.ctxFirst(n.Type, n.Name.Name, n.Pos())
			l.mutexValue(n.Recv, n.Name.Name, true)
			l.mutexValue(n.Type.Params, n.Name.Name, false)
		case *ast.FuncLit:
			l.ctxFirst(n.Type, "func literal", n.Pos())
			l.mutexValue(n.Type.Params, "func literal", false)
		}
		return true
	})
}

// --- float-cmp ---------------------------------------------------------------

// floatCmp flags == and != where both operands are non-constant floats.
// Comparisons against a constant (x == 0, f != 1) are the solver's sentinel
// idiom and stay legal; it is the comparison of two computed floats that
// silently depends on rounding.
func (l *linter) floatCmp(e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	lt, rt := l.p.Info.Types[e.X], l.p.Info.Types[e.Y]
	if lt.Value != nil || rt.Value != nil {
		return // one side is a compile-time constant
	}
	if isFloat(lt.Type) && isFloat(rt.Type) {
		l.report(e.OpPos, ruleFloatCmp,
			"%s between two non-constant floats; order them or compare against a tolerance", e.Op)
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// --- hot-loop-time -----------------------------------------------------------

// hotLoopTime flags package-level calls into time and math/rand inside any
// loop of the solver packages. Wall-clock reads in the simplex or
// branch-and-bound inner loops make runs irreproducible and cost a vDSO
// call per iteration; deadline checks belong on node boundaries (where the
// solver already polls) and randomness belongs in the seeded sampler.
// Functions with "sample" in their name and _test.go files are exempt.
func (l *linter) hotLoopTime(call *ast.CallExpr, stack []ast.Node) {
	if !solverPkgs[l.p.Path] {
		return
	}
	if strings.HasSuffix(l.p.Fset.Position(call.Pos()).Filename, "_test.go") {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if _, ok := l.p.Info.Uses[id].(*types.PkgName); !ok {
		return // method call or local selector, not a package function
	}
	obj, ok := l.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return // a conversion like time.Duration(x), not a function call
	}
	path := obj.Pkg().Path()
	if path != "time" && path != "math/rand" && path != "math/rand/v2" {
		return
	}
	inLoop := false
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
		case *ast.FuncDecl:
			if inLoop && !strings.Contains(strings.ToLower(n.Name.Name), "sample") {
				l.report(call.Pos(), ruleHotLoopTime,
					"%s.%s inside a loop of %s; hoist it out or move it to the sampler",
					id.Name, sel.Sel.Name, l.p.Path)
			}
			return
		case *ast.FuncLit:
			// A closure resets the loop context: the literal may run far
			// from the loop that encloses its definition. Only loops inside
			// the literal itself count.
			if inLoop {
				l.report(call.Pos(), ruleHotLoopTime,
					"%s.%s inside a loop of %s; hoist it out or move it to the sampler",
					id.Name, sel.Sel.Name, l.p.Path)
			}
			return
		}
	}
}

// --- ctx-first ---------------------------------------------------------------

// ctxFirst enforces the standard library convention: a context.Context
// parameter, when present, is the first parameter.
func (l *linter) ctxFirst(ft *ast.FuncType, name string, pos token.Pos) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if l.isContext(field.Type) && idx > 0 {
			l.report(field.Type.Pos(), ruleCtxFirst,
				"%s takes context.Context as parameter %d; context must be the first parameter", name, idx+1)
			return
		}
		idx += n
	}
}

func (l *linter) isContext(e ast.Expr) bool {
	t := l.p.Info.Types[e].Type
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// --- mutex-value -------------------------------------------------------------

// mutexValue flags receivers and parameters that carry a sync.Mutex,
// sync.RWMutex, or sync.WaitGroup by value — the copy locks nothing.
func (l *linter) mutexValue(fields *ast.FieldList, fn string, recv bool) {
	if fields == nil {
		return
	}
	kind := "parameter"
	if recv {
		kind = "receiver"
	}
	for _, field := range fields.List {
		t := l.p.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if carrier := syncByValue(t, nil); carrier != "" {
			l.report(field.Type.Pos(), ruleMutexValue,
				"%s of %s passes %s by value; use a pointer", kind, fn, carrier)
		}
	}
}

// syncByValue reports the sync primitive a non-pointer type would copy, or
// "" if there is none. Struct fields are searched transitively.
func syncByValue(t types.Type, seen map[types.Type]bool) string {
	if n, ok := t.(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			switch n.Obj().Name() {
			case "Mutex", "RWMutex", "WaitGroup":
				return "sync." + n.Obj().Name()
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	for i := 0; i < st.NumFields(); i++ {
		if s := syncByValue(st.Field(i).Type(), seen); s != "" {
			return s
		}
	}
	return ""
}

// --- tracer-guard ------------------------------------------------------------

// tracerGuard flags r.Emit(...) where r is an interface value with an Emit
// method (the obs.Tracer shape) and no nil guard is in sight: neither an
// enclosing `if r != nil` nor an earlier `if r == nil { return }` in the
// same function. Tracers are optional everywhere in this codebase — nil is
// the documented "tracing off" value — so an unguarded Emit is a latent
// panic on the untraced path.
func (l *linter) tracerGuard(call *ast.CallExpr, stack []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return
	}
	t := l.p.Info.Types[sel.X].Type
	if t == nil {
		return
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok || !hasEmit(iface) {
		return
	}
	recv := types.ExprString(sel.X)

	// An enclosing if (or if-init) whose condition mentions `recv != nil`.
	var encl ast.Node // innermost enclosing FuncDecl or FuncLit
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if strings.Contains(types.ExprString(n.Cond), recv+" != nil") {
				return
			}
		case *ast.FuncDecl, *ast.FuncLit:
			if encl == nil {
				encl = n
			}
		}
	}
	if encl != nil && hasNilReturnGuard(encl, recv, call.Pos()) {
		return
	}
	l.report(call.Pos(), ruleTracerGuard,
		"%s.Emit without a nil guard; wrap in `if %s != nil` or return early when nil", recv, recv)
}

func hasEmit(iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Emit" {
			return true
		}
	}
	return false
}

// hasNilReturnGuard reports whether fn contains, before pos, an
// `if <recv> == nil` statement whose body returns.
func hasNilReturnGuard(fn ast.Node, recv string, pos token.Pos) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.End() >= pos || found {
			return !found
		}
		if types.ExprString(ifs.Cond) != recv+" == nil" {
			return true
		}
		for _, s := range ifs.Body.List {
			if _, ok := s.(*ast.ReturnStmt); ok {
				found = true
			}
		}
		return true
	})
	return found
}
