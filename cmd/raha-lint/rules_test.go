package main

import (
	"testing"

	"raha/internal/lint"
)

// Each new rule gets its own fixture package so the legacy corpus stays
// byte-stable; every test runs exactly the rule under test, so a fixture's
// incidental violations of other rules cannot bleed in.

func TestAtomicMixFixture(t *testing.T) {
	p := loadOne(t, "./testdata/src/atomicmix")
	pkgs := []*lint.Package{p}
	compare(t, run(t, pkgs, "atomic-mix").Findings, collectMarkers(t, pkgs))
}

func TestLockOrderFixture(t *testing.T) {
	p := loadOne(t, "./testdata/src/lockorder")
	pkgs := []*lint.Package{p}
	compare(t, run(t, pkgs, "lock-order").Findings, collectMarkers(t, pkgs))
}

// TestLockOrderCrossPackage is the fact-propagation case: package a
// acquires MuA→MuB, package b acquires MuB→MuA. Neither package alone has
// a cycle; the two-package run must report exactly one.
func TestLockOrderCrossPackage(t *testing.T) {
	pkgs := loadPkgs(t, "./testdata/src/lockcross/...")
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	res := run(t, pkgs, "lock-order")
	compare(t, res.Findings, collectMarkers(t, pkgs))
	if len(res.Findings) != 1 {
		t.Fatalf("cross-package cycle reported %d findings, want exactly 1", len(res.Findings))
	}

	// And each package alone must stay silent: the cycle does not exist on
	// either side of the boundary.
	for _, p := range pkgs {
		solo := run(t, []*lint.Package{p}, "lock-order")
		if len(solo.Findings) != 0 {
			t.Errorf("package %s alone reported %d lock-order findings, want 0", p.Path, len(solo.Findings))
		}
	}
}

func TestGoroutineLeakFixture(t *testing.T) {
	p := loadOne(t, "./testdata/src/goroleak")
	pkgs := []*lint.Package{p}
	compare(t, run(t, pkgs, "goroutine-leak").Findings, collectMarkers(t, pkgs))
}

// TestHotAllocFixture masquerades the fixture as internal/milp, the same
// trick the legacy hot-loop-time corpus uses: the rule is dormant
// elsewhere.
func TestHotAllocFixture(t *testing.T) {
	p := loadOne(t, "./testdata/src/hotalloc")
	pkgs := []*lint.Package{p}

	if res := run(t, pkgs, "hot-alloc"); len(res.Findings) != 0 {
		t.Fatalf("hot-alloc fired outside the solver packages: %v", res.Findings)
	}

	saved := p.Path
	p.Path = "raha/internal/milp"
	defer func() { p.Path = saved }()
	compare(t, run(t, pkgs, "hot-alloc").Findings, collectMarkers(t, pkgs))
}

func TestErrDropFixture(t *testing.T) {
	p := loadOne(t, "./testdata/src/errdrop")
	pkgs := []*lint.Package{p}
	compare(t, run(t, pkgs, "err-drop").Findings, collectMarkers(t, pkgs))
}

// TestRulesFilter pins -rules semantics: an unknown rule is an error, and a
// subset runs only that subset.
func TestRulesFilter(t *testing.T) {
	p := loadOne(t, "./testdata/src/errdrop")
	if _, err := lint.Run([]*lint.Package{p}, []string{"no-such-rule"}); err == nil {
		t.Error("unknown rule name did not error")
	}
	res := run(t, []*lint.Package{p}, "float-cmp")
	if len(res.Findings) != 0 {
		t.Errorf("float-cmp-only run on the errdrop fixture found %d findings, want 0", len(res.Findings))
	}
}

// TestStableIDs pins the -json contract: finding IDs survive line drift
// (they hash rule, file base name, message, and occurrence index — not the
// line number), and distinct findings get distinct IDs.
func TestStableIDs(t *testing.T) {
	p := loadOne(t, "./testdata/src/golden")
	first := run(t, []*lint.Package{p}, "float-cmp", "err-drop")
	second := run(t, []*lint.Package{p}, "float-cmp", "err-drop")
	if len(first.Findings) == 0 {
		t.Fatal("golden fixture produced no findings")
	}
	seen := map[string]bool{}
	for i := range first.Findings {
		if first.Findings[i].ID != second.Findings[i].ID {
			t.Errorf("ID not stable across runs: %q vs %q", first.Findings[i].ID, second.Findings[i].ID)
		}
		if seen[first.Findings[i].ID] {
			t.Errorf("duplicate finding ID %q", first.Findings[i].ID)
		}
		seen[first.Findings[i].ID] = true
	}
}
