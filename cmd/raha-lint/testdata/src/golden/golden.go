// Package golden produces a small, deterministic finding set for the -json
// golden-output test. Keep it stable: the golden file pins IDs, positions,
// and messages.
package golden

import "os"

func eq(a, b float64) bool {
	return a == b // float-cmp
}

func drop() {
	os.Remove("golden.tmp") // err-drop
}
