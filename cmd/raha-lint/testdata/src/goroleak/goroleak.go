// Package goroleak is the goroutine-leak fixture: every bounded pattern the
// rule recognizes (WaitGroup join, ctx.Done, channel receive, close-join)
// plus the leaks it must flag.
package goroleak

import (
	"context"
	"fmt"
	"sync"
)

func leakLit() {
	go func() { // want:goroutine-leak
		for {
			run()
		}
	}()
}

func spin() {
	for {
		run()
	}
}

func leakNamed() {
	go spin() // want:goroutine-leak
}

func boundedWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // legal: WaitGroup join
		defer wg.Done()
		run()
	}()
}

func boundedCtx(ctx context.Context) {
	go func() { // legal: ctx.Done select
		select {
		case <-ctx.Done():
		}
	}()
}

func boundedRecv(ch chan int) {
	go func() { // legal: terminates when ch is closed
		for range ch {
		}
	}()
}

func worker(ch chan int) {
	for range ch {
	}
}

func boundedNamed(ch chan int) {
	go worker(ch) // legal: named callee's body receives
}

func externalCallee() {
	go fmt.Println("external") // legal: callee outside the analyzed tree
}

type server struct {
	done chan struct{}
	dead chan struct{}
}

// start's goroutine closes s.done, and wait receives from it — the
// close-join pattern, proven across function boundaries by facts.
func (s *server) start() {
	go func() { // legal: joined close (see wait)
		defer close(s.done)
		run()
	}()
}

func (s *server) wait() {
	<-s.done
}

// startDead closes a channel nothing ever receives from: not a join.
func (s *server) startDead() {
	go func() { // want:goroutine-leak
		defer close(s.dead)
		run()
	}()
}

func run() {}
