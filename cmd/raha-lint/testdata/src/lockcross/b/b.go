// Package b inverts the lock order package a established. Neither package
// has a cycle alone; the whole-program join must find it.
package b

import "raha/cmd/raha-lint/testdata/src/lockcross/a"

// Reverse acquires S's locks in the opposite order to a.LockBoth.
func Reverse(s *a.S) {
	s.MuB.Lock()
	defer s.MuB.Unlock()
	s.MuA.Lock()
	s.MuA.Unlock()
}
