// Package a establishes the canonical order for S's two locks: MuA before
// MuB. Package b inverts it — the cycle only exists across the package
// boundary, which is exactly what the fact propagation must see.
package a

import "sync"

// S carries two ordered locks.
type S struct {
	MuA sync.Mutex
	MuB sync.Mutex
}

// LockBoth acquires in the canonical order.
func (s *S) LockBoth() {
	s.MuA.Lock()
	s.MuB.Lock() // want:lock-order
	s.MuB.Unlock()
	s.MuA.Unlock()
}
