// Package lockorder is the lock-order fixture: an A→B / B→A inversion on
// two package-level mutexes, an interprocedural self-cycle through a
// helper, and a consistently-ordered pair plus an interface dispatch that
// must stay silent.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	mu  sync.Mutex
)

func aThenB() {
	muA.Lock()
	muB.Lock() // want:lock-order
	muB.Unlock()
	muA.Unlock()
}

func bThenA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	muA.Unlock()
}

// outer holds mu across a call whose callee re-acquires mu: a self-deadlock
// the graph sees as a one-node cycle, witnessed at the call site.
func outer() {
	mu.Lock()
	defer mu.Unlock()
	helper() // want:lock-order
}

func helper() {
	mu.Lock()
	mu.Unlock()
}

// C before A, on both paths: consistent order, no finding.
func cThenA1() {
	muC.Lock()
	muA.Lock()
	muA.Unlock()
	muC.Unlock()
}

func cThenA2() {
	muC.Lock()
	defer muC.Unlock()
	muA.Lock()
	muA.Unlock()
}

// The steal-path hazard the deque protocol dodges by never holding two
// deque locks at once: a thief that pins its own deque while raiding a
// victim's inverts against the victim raiding back.
var (
	dequeOwn sync.Mutex
	dequeVic sync.Mutex
)

func stealHoldingOwn() {
	dequeOwn.Lock()
	defer dequeOwn.Unlock()
	dequeVic.Lock() // want:lock-order
	dequeVic.Unlock()
}

func victimStealsBack() {
	dequeVic.Lock()
	defer dequeVic.Unlock()
	dequeOwn.Lock()
	dequeOwn.Unlock()
}

// Interface dispatch resolves to every analyzed method with a matching name
// and arity; impl.Do only takes its own lock, so muD → impl.mu is an edge
// but no cycle.
type locker interface {
	Do(x int)
}

type impl struct {
	mu sync.Mutex
}

func (i *impl) Do(x int) {
	i.mu.Lock()
	_ = x
	i.mu.Unlock()
}

func viaIface(l locker) {
	muD.Lock()
	defer muD.Unlock()
	l.Do(1) // legal: acyclic edge muD → impl.mu
}
