// Package atomicmix is the atomic-mix fixture: fields updated through
// sync/atomic must never be accessed plainly, element accesses are a
// separate dimension from the slice header, and address-taken pointers
// handed to helpers are opaque.
package atomicmix

import "sync/atomic"

type counters struct {
	hits int64    // atomically updated; plain accesses below must be flagged
	cold int64    // never touched atomically; plain accesses are legal
	bits []uint64 // elements CAS-updated; header reads stay legal
	opq  int64    // only ever addressed through a helper: opaque
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	c.cold++ // legal: cold is never accessed atomically
	atomic.AddUint64(&c.bits[0], 7)
}

func load(c *counters) int64 {
	return atomic.LoadInt64(&c.hits) // legal: atomic read
}

func read(c *counters) int64 {
	return c.hits // want:atomic-mix
}

func reset(c *counters) {
	c.hits = 0 // want:atomic-mix
}

func header(c *counters) int {
	return len(c.bits) // legal: reads the slice header, not the elements
}

func elem(c *counters) uint64 {
	return c.bits[1] // want:atomic-mix
}

func viaHelper(c *counters) {
	helperAdd(&c.opq, 1) // legal: opaque — the pointer's use is the helper's business
}

func readOpq(c *counters) int64 {
	return c.opq // legal: opq has no direct sync/atomic access (documented limit)
}

func helperAdd(p *int64, v int64) {
	atomic.AddInt64(p, v)
}

// incumbent mirrors the solver's lock-free incumbent: the objective lives
// as Float64bits behind a CAS claim loop, the solution vector is published
// as a fresh copy, and a sequence word versions the publications.
type incumbent struct {
	bits uint64    // only ever Load/CAS — the float-bits CAS idiom, legal
	seq  uint64    // atomically bumped by writers; plain reads below are flagged
	x    []float64 // float64 elements: not atomic-capable, never tracked
}

// offer is the CAS claim loop: every access to bits goes through
// sync/atomic, so the idiom produces no finding.
func offer(inc *incumbent, objBits uint64) bool {
	for {
		cur := atomic.LoadUint64(&inc.bits)
		if cur <= objBits {
			return false
		}
		if atomic.CompareAndSwapUint64(&inc.bits, cur, objBits) { // legal: Load + CAS only
			atomic.AddUint64(&inc.seq, 1)
			return true
		}
	}
}

// seqReadLoop is the classic seqlock read loop written wrong: the writer
// publishes seq with atomic.Add, so the unsynchronized first read is a
// race the schedule may never surface — exactly what the rule exists to
// catch structurally.
func seqReadLoop(inc *incumbent) []float64 {
	for {
		s1 := inc.seq // want:atomic-mix
		cp := append([]float64(nil), inc.x...)
		if atomic.LoadUint64(&inc.seq) == s1 && s1%2 == 0 {
			return cp
		}
	}
}
