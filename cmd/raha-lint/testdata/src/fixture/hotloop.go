package fixture

import (
	"math/rand"
	"time"
)

// The hot-loop-time rule only fires inside the solver packages
// (internal/lp, internal/milp). The linter's tests lint this package a
// second time under a solver package path, so the markers in this file are
// asserted only on that pass (see TestFixture).

func deadlineInLoop(work []int) int {
	deadline := time.Now().Add(time.Second) // legal: outside the loop
	n := 0
	for _, w := range work {
		if time.Now().After(deadline) { // want:hot-loop-time
			break
		}
		n += w
	}
	return n
}

func elapsedInLoop(rounds int) time.Duration {
	start := time.Now() // legal: outside the loop
	var last time.Duration
	for i := 0; i < rounds; i++ {
		last = time.Since(start) // want:hot-loop-time
	}
	return last
}

func randInLoop(n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += rand.Float64() // want:hot-loop-time
	}
	return s
}

// resample is exempt by name: randomness belongs in the sampler.
func resample(n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += rand.Float64() // legal: "sample" in the enclosing function name
	}
	return s
}

func closureOverLoop(work []int) func() time.Time {
	var fns []func() time.Time
	for range work {
		fns = append(fns, func() time.Time {
			return time.Now() // legal: the closure body is not the loop body
		})
	}
	if len(fns) == 0 {
		return nil
	}
	return fns[0]
}

func loopInClosure(work []int) time.Duration {
	f := func() time.Duration {
		start := time.Now() // legal: before the loop
		var last time.Duration
		for range work {
			last = time.Since(start) // want:hot-loop-time
		}
		return last
	}
	return f()
}

func conversionInLoop(ns []int64) []time.Duration {
	out := make([]time.Duration, len(ns))
	for i, v := range ns {
		out[i] = time.Duration(v) // legal: a conversion, not a call
	}
	return out
}
