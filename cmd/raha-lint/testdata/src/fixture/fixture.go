// Package fixture is the raha-lint test corpus: every rule has at least
// one deliberate violation and one legal near-miss. Lines that must be
// flagged carry a trailing marker comment naming the rule (the word "want",
// a colon, the rule); the linter's tests compare its findings against these
// markers, so the file must compile but is never imported.
package fixture

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Tracer mirrors the obs.Tracer shape: any interface with an Emit method
// is subject to the tracer-guard rule.
type Tracer interface {
	Emit(layer, ev string, fields map[string]any)
}

// --- float-cmp ---------------------------------------------------------------

func floatCmp(a, b float64, xs []float64) bool {
	if a == b { // want:float-cmp
		return true
	}
	if a != xs[0] { // want:float-cmp
		return false
	}
	if a == 0 { // legal: constant sentinel comparison
		return false
	}
	const tol = 1e-9
	if a != tol { // legal: one side is a compile-time constant
		return false
	}
	d := a - b
	if d != d { // want:float-cmp
		return true // NaN check spelled manually; use math.IsNaN
	}
	//raha:lint-allow float-cmp exact bit-pattern comparison is the point here
	return a == b
}

func intCmp(a, b int) bool { return a == b } // legal: not floats

// --- hot-loop-time is exercised in hotloop.go (it only fires inside the
// solver packages, which the test harness simulates by overriding the
// package path) -----------------------------------------------------------

func notSolverLoop() time.Duration {
	var total time.Duration
	for i := 0; i < 3; i++ {
		total += time.Second // legal: constant, and not a solver package anyway
	}
	return total
}

// --- ctx-first ---------------------------------------------------------------

func ctxSecond(name string, ctx context.Context) error { // want:ctx-first
	_ = name
	<-ctx.Done()
	return ctx.Err()
}

func ctxFirst(ctx context.Context, name string) error { // legal
	_ = name
	return ctx.Err()
}

func noCtx(a, b int) int { return a + b } // legal

var ctxLit = func(n int, ctx context.Context) { _ = n } // want:ctx-first

// --- mutex-value -------------------------------------------------------------

type lockedCounter struct {
	mu sync.Mutex
	n  int
}

func byValue(mu sync.Mutex) { // want:mutex-value
	mu.Lock()
}

func structByValue(c lockedCounter) int { // want:mutex-value
	return c.n
}

func byPointer(mu *sync.Mutex, c *lockedCounter) { // legal
	mu.Lock()
	defer mu.Unlock()
	c.n++
}

func (c lockedCounter) valueReceiver() int { // want:mutex-value
	return c.n
}

func (c *lockedCounter) pointerReceiver() int { // legal
	return c.n
}

func wgByValue(wg sync.WaitGroup) { // want:mutex-value
	wg.Wait()
}

// --- tracer-guard ------------------------------------------------------------

type solver struct {
	tracer Tracer
}

func (s *solver) unguarded() {
	s.tracer.Emit("fixture", "ev", nil) // want:tracer-guard
}

func (s *solver) wrapped() {
	if s.tracer != nil {
		s.tracer.Emit("fixture", "ev", nil) // legal: enclosing guard
	}
}

func (s *solver) earlyReturn() {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit("fixture", "ev", nil) // legal: early-return guard
}

func (s *solver) guardAfter() {
	s.tracer.Emit("fixture", "ev", nil) // want:tracer-guard
	if s.tracer == nil {
		return // the guard below the call does not help the call above it
	}
}

func initGuard(mk func() Tracer) {
	if tr := mk(); tr != nil {
		tr.Emit("fixture", "ev", nil) // legal: if-init guard
	}
}

func concreteEmit() {
	var c emitter
	c.Emit("fixture", "ev", nil) // legal: concrete type, not a nilable interface
}

type emitter struct{}

func (emitter) Emit(layer, ev string, fields map[string]any) {}

// seed the loop variables so the file has no unused symbols
var _ = rand.Int
