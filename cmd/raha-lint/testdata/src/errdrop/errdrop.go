// Package errdrop is the err-drop fixture: bare call statements that
// discard an error are flagged; explicit discards, defers, and the
// cannot-fail writer allowlist stay legal.
package errdrop

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func dropped(name string) {
	os.Remove(name) // want:err-drop
}

func deliberate(name string) {
	_ = os.Remove(name) // legal: explicit, greppable discard
}

func handled(name string) error {
	return os.Remove(name) // legal: propagated
}

func closeDropped(f *os.File) {
	f.Close() // want:err-drop
}

func deferClose(f *os.File) {
	defer f.Close() // legal: defer is exempt by design
}

func printing(msg string) {
	fmt.Fprintln(os.Stderr, msg) // legal: stderr allowlist
	fmt.Println(msg)             // legal: fmt.Print* is stdout by definition
}

func builder(b *strings.Builder) {
	fmt.Fprintf(b, "x") // legal: strings.Builder cannot fail
}

func cannotFailMethods(b *strings.Builder, buf *bytes.Buffer) {
	b.WriteString("x")   // legal: strings.Builder methods never return an error
	b.WriteByte('x')     // legal
	buf.WriteString("x") // legal: bytes.Buffer methods never return an error
}

func genericWriter(w io.Writer) {
	fmt.Fprintf(w, "x") // want:err-drop
}

func nonError(dst, src []int) {
	copy(dst, src) // legal: no error in the result
}
