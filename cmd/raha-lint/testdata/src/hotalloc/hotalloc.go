// Package hotalloc is the hot-alloc fixture. The rule only fires in the
// solver packages, so the test lints this package under the
// raha/internal/milp path (the same masquerade the legacy hot-loop-time
// fixture uses).
package hotalloc

type vec struct {
	xs []float64
}

func makeInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, 8) // want:hot-alloc
		total += len(buf) + i
	}
	return total
}

func newInLoop(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		p := new(int) // want:hot-alloc
		t += *p
	}
	return t
}

func amortizedAppend(work []int) []int {
	var out []int
	for _, w := range work {
		out = append(out, w) // legal: amortized self-append to an outer var
	}
	return out
}

func freshAppend(work []int) int {
	t := 0
	var seed []int
	for _, w := range work {
		row := append(seed, w) // want:hot-alloc
		t += len(row)
	}
	return t
}

func selfAppendLiteral(work []int) []vec {
	var out []vec
	for _, w := range work {
		out = append(out, vec{xs: nil}) // legal: element copied by value into amortized storage
		_ = w
	}
	return out
}

func selfAppendLiteralNestedAlloc(work []int) []vec {
	var out []vec
	for range work {
		out = append(out, vec{xs: make([]float64, 4)}) // want:hot-alloc
	}
	return out
}

func literalInLoop(n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		v := vec{xs: nil} // want:hot-alloc
		s += float64(len(v.xs)) + float64(i)
	}
	return s
}

func inPlaceWrite(rows []vec) {
	for i := range rows {
		rows[i] = vec{} // legal: writes into a pre-allocated slot
	}
}

func closureBodyNotLoop(work []int) []func() []int {
	var fns []func() []int
	for range work {
		fns = append(fns, func() []int { // want:hot-alloc
			return make([]int, 4) // legal: the closure body is not the loop body
		})
	}
	return fns
}

// sampleBuffers is exempt by name, like the hot-loop-time sampler carve-out.
func sampleBuffers(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		b := make([]int, 4) // legal: "sample" in the enclosing function name
		t += len(b) + i
	}
	return t
}

func outsideLoop(n int) []int {
	buf := make([]int, n) // legal: outside any loop
	for i := range buf {
		buf[i] = i
	}
	return buf
}

// stealScanReuse mirrors the worker steal path: one buffer hoisted out of
// the victim-scan loop and truncated per victim — the allocation-free
// shape the scheduler's hot loop must keep.
func stealScanReuse(victims [][]int) int {
	buf := make([]int, 0, 64) // legal: hoisted steal buffer, reused per victim
	t := 0
	for _, v := range victims {
		buf = buf[:0]
		buf = append(buf, v...) // legal: amortized into the reused buffer
		t += len(buf)
	}
	return t
}

// stealScanFresh is the naive variant: a fresh buffer per scanned victim
// puts an allocation on every steal attempt, most of which fail.
func stealScanFresh(victims [][]int) int {
	t := 0
	for _, v := range victims {
		buf := make([]int, 0, len(v)) // want:hot-alloc
		buf = append(buf, v...)
		t += len(buf)
	}
	return t
}
