package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"raha/internal/lint"
)

// TestJSONGolden round-trips the -json output through a golden file: the
// report for the golden fixture must match testdata/golden.json byte for
// byte (stable IDs, relative paths, position order), and must parse back
// into the same findings. Regenerate with:
//
//	go test ./cmd/raha-lint -run TestJSONGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

func TestJSONGolden(t *testing.T) {
	p := loadOne(t, "./testdata/src/golden")
	res := run(t, []*lint.Package{p}, "float-cmp", "err-drop")
	if len(res.Findings) == 0 {
		t.Fatal("golden fixture produced no findings")
	}

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, res.Findings, wd); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	goldenPath := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from golden file\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}

	// Round-trip: the document must parse back into the same findings.
	var doc struct {
		Findings []struct {
			ID   string `json:"id"`
			Rule string `json:"rule"`
			File string `json:"file"`
			Line int    `json:"line"`
			Col  int    `json:"col"`
			Msg  string `json:"msg"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("parsing -json output: %v", err)
	}
	if doc.Count != len(res.Findings) || len(doc.Findings) != len(res.Findings) {
		t.Fatalf("count mismatch: doc %d/%d vs %d findings", doc.Count, len(doc.Findings), len(res.Findings))
	}
	for i, f := range res.Findings {
		d := doc.Findings[i]
		if d.ID != f.ID || d.Rule != f.Rule || d.Line != f.Pos.Line || d.Col != f.Pos.Column || d.Msg != f.Msg {
			t.Errorf("finding %d did not round-trip: %+v vs %v", i, d, f)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("finding %d carries an absolute path %q; golden output must be machine-independent", i, d.File)
		}
	}
}
