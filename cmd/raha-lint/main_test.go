package main

import (
	"fmt"
	"strings"
	"testing"
)

// marker is one expected finding, declared in the fixture source as a
// trailing `// want:<rule>` comment.
type marker struct {
	file string
	line int
	rule string
}

func (m marker) String() string { return fmt.Sprintf("%s:%d: [%s]", m.file, m.line, m.rule) }

// collectMarkers scans the fixture package's comments for want markers.
func collectMarkers(t *testing.T, p *pkg) []marker {
	t.Helper()
	var out []marker
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want:")
				if idx < 0 {
					continue
				}
				rule := strings.Fields(c.Text[idx+len("want:"):])[0]
				pos := p.Fset.Position(c.Pos())
				out = append(out, marker{file: pos.Filename, line: pos.Line, rule: rule})
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("fixture declares no want markers")
	}
	return out
}

func loadFixture(t *testing.T) *pkg {
	t.Helper()
	pkgs, err := load([]string{"./testdata/src/fixture"})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

// compare checks findings against markers one-to-one.
func compare(t *testing.T, findings []finding, want []marker) {
	t.Helper()
	wantSet := map[marker]bool{}
	for _, m := range want {
		wantSet[m] = true
	}
	for _, f := range findings {
		m := marker{file: f.pos.Filename, line: f.pos.Line, rule: f.rule}
		if !wantSet[m] {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		delete(wantSet, m)
	}
	for m := range wantSet {
		t.Errorf("missing finding: %s", m)
	}
}

// TestFixture lints the fixture corpus twice: once under its real import
// path, where the hot-loop-time rule is dormant (it only applies to the
// solver packages), and once masquerading as internal/milp, where every
// marker must fire.
func TestFixture(t *testing.T) {
	p := loadFixture(t)
	markers := collectMarkers(t, p)

	t.Run("non-solver package", func(t *testing.T) {
		var want []marker
		for _, m := range markers {
			if m.rule != ruleHotLoopTime {
				want = append(want, m)
			}
		}
		compare(t, lintPackage(p), want)
	})

	t.Run("as solver package", func(t *testing.T) {
		saved := p.Path
		p.Path = "raha/internal/milp"
		defer func() { p.Path = saved }()
		compare(t, lintPackage(p), markers)
	})
}

// TestAllowDirective pins the suppression mechanics: the directive covers
// its own line and the next, for the named rule only.
func TestAllowDirective(t *testing.T) {
	p := loadFixture(t)
	allowed := collectAllows(p)
	var directive marker
	for k := range allowed {
		if k.rule == ruleFloatCmp {
			directive = marker{file: k.file, line: k.line, rule: k.rule}
			break
		}
	}
	if directive.file == "" {
		t.Fatal("fixture's float-cmp allow directive not indexed")
	}
	for _, f := range lintPackage(p) {
		if f.pos.Filename == directive.file && (f.pos.Line == directive.line || f.pos.Line == directive.line+1) {
			t.Errorf("suppressed line still reported: %s", f)
		}
	}
}

// TestTestFilesAreLinted guards the loader's -test wiring: the package list
// for a package with _test.go files must include them (the repository's own
// test files are subject to every rule except hot-loop-time).
func TestTestFilesAreLinted(t *testing.T) {
	pkgs, err := load([]string{"raha/internal/milp"})
	if err != nil {
		t.Fatalf("loading internal/milp: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	found := false
	for _, f := range pkgs[0].Files {
		if strings.HasSuffix(pkgs[0].Fset.Position(f.Pos()).Filename, "_test.go") {
			found = true
		}
	}
	if !found {
		t.Fatal("test variant of internal/milp carries no _test.go files")
	}
}
