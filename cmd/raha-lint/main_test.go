package main

import (
	"fmt"
	"strings"
	"testing"

	"raha/internal/lint"
)

// marker is one expected finding, declared in the fixture source as a
// trailing `// want:<rule>` comment.
type marker struct {
	file string
	line int
	rule string
}

func (m marker) String() string { return fmt.Sprintf("%s:%d: [%s]", m.file, m.line, m.rule) }

// collectMarkers scans the fixture packages' comments for want markers.
func collectMarkers(t *testing.T, pkgs []*lint.Package) []marker {
	t.Helper()
	var out []marker
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "want:")
					if idx < 0 {
						continue
					}
					rule := strings.Fields(c.Text[idx+len("want:"):])[0]
					pos := p.Fset.Position(c.Pos())
					out = append(out, marker{file: pos.Filename, line: pos.Line, rule: rule})
				}
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("fixture declares no want markers")
	}
	return out
}

func loadPkgs(t *testing.T, patterns ...string) []*lint.Package {
	t.Helper()
	pkgs, err := lint.Load(patterns)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("loading %v: no packages", patterns)
	}
	return pkgs
}

func loadOne(t *testing.T, pattern string) *lint.Package {
	t.Helper()
	pkgs := loadPkgs(t, pattern)
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for %s, want 1", len(pkgs), pattern)
	}
	return pkgs[0]
}

func run(t *testing.T, pkgs []*lint.Package, rules ...string) *lint.Result {
	t.Helper()
	res, err := lint.Run(pkgs, rules)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	return res
}

// compare checks findings against markers one-to-one.
func compare(t *testing.T, findings []lint.Finding, want []marker) {
	t.Helper()
	wantSet := map[marker]bool{}
	for _, m := range want {
		wantSet[m] = true
	}
	for _, f := range findings {
		m := marker{file: f.Pos.Filename, line: f.Pos.Line, rule: f.Rule}
		if !wantSet[m] {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		delete(wantSet, m)
	}
	for m := range wantSet {
		t.Errorf("missing finding: %s", m)
	}
}

// legacyRules are the five original single-pass rules; the legacy fixture
// corpus is asserted against exactly these (the newer rules have their own
// fixture packages).
var legacyRules = []string{"float-cmp", "hot-loop-time", "ctx-first", "mutex-value", "tracer-guard"}

// TestFixture lints the legacy fixture corpus twice: once under its real
// import path, where the hot-loop-time rule is dormant (it only applies to
// the solver packages), and once masquerading as internal/milp, where every
// marker must fire.
func TestFixture(t *testing.T) {
	p := loadOne(t, "./testdata/src/fixture")
	markers := collectMarkers(t, []*lint.Package{p})

	t.Run("non-solver package", func(t *testing.T) {
		var want []marker
		for _, m := range markers {
			if m.rule != "hot-loop-time" {
				want = append(want, m)
			}
		}
		compare(t, run(t, []*lint.Package{p}, legacyRules...).Findings, want)
	})

	t.Run("as solver package", func(t *testing.T) {
		saved := p.Path
		p.Path = "raha/internal/milp"
		defer func() { p.Path = saved }()
		compare(t, run(t, []*lint.Package{p}, legacyRules...).Findings, markers)
	})
}

// TestAllowDirective pins the suppression mechanics: the directive covers
// its own line and the next, for the named rule only, and the framework
// marks it used.
func TestAllowDirective(t *testing.T) {
	p := loadOne(t, "./testdata/src/fixture")
	res := run(t, []*lint.Package{p}, legacyRules...)

	var directive *lint.Directive
	for i := range res.Directives {
		if res.Directives[i].Rule == "float-cmp" {
			directive = &res.Directives[i]
			break
		}
	}
	if directive == nil {
		t.Fatal("fixture's float-cmp allow directive not collected")
	}
	if directive.Reason == "" {
		t.Error("directive reason not captured")
	}
	if !directive.Used {
		t.Error("directive did not suppress its finding")
	}
	for _, f := range res.Findings {
		if f.Pos.Filename == directive.Pos.Filename &&
			(f.Pos.Line == directive.Pos.Line || f.Pos.Line == directive.Pos.Line+1) {
			t.Errorf("suppressed line still reported: %s", f)
		}
	}
}

// TestTestFilesAreLinted guards the loader's -test wiring: the package list
// for a package with _test.go files must include them (the repository's own
// test files are subject to most rules).
func TestTestFilesAreLinted(t *testing.T) {
	p := loadOne(t, "raha/internal/milp")
	found := false
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			found = true
		}
	}
	if !found {
		t.Fatal("test variant of internal/milp carries no _test.go files")
	}
}

// TestExternalTestPackage guards the loader against the variant-collapse
// bug: the root package has both an in-package test variant (which must
// supersede the plain package, keeping raha.go and its _test.go files
// linted) and an external raha_test package (which must survive as its own
// target, not overwrite the internal variant).
func TestExternalTestPackage(t *testing.T) {
	pkgs := loadPkgs(t, "raha")
	byPath := map[string]*lint.Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	root, ok := byPath["raha"]
	if !ok {
		t.Fatalf("root package missing from %d targets", len(pkgs))
	}
	ext, ok := byPath["raha_test"]
	if !ok {
		t.Fatalf("external raha_test package missing from %d targets", len(pkgs))
	}
	inPkgTests := false
	for _, f := range root.Files {
		if strings.HasSuffix(root.Fset.Position(f.Pos()).Filename, "_test.go") {
			inPkgTests = true
		}
	}
	if !inPkgTests {
		t.Error("raha target lost its in-package _test.go files (external variant overwrote it)")
	}
	if len(ext.Files) == 0 {
		t.Error("raha_test target carries no files")
	}
}
