package main

import (
	"testing"

	"raha/internal/lint"
)

// TestTreeCleanAndDirectiveAudit is the dogfood gate and the allow-directive
// audit in one pass over the real tree:
//
//   - the repository must be clean under all ten rules (a finding here is a
//     regression — fix it or, with a reviewed reason, suppress it);
//   - every //raha:lint-allow directive must name an existing rule, carry a
//     non-empty reason, and actually suppress a finding — a stale directive
//     is dead weight that silently licenses future violations.
func TestTreeCleanAndDirectiveAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree; skipped in -short")
	}
	pkgs := loadPkgs(t, "raha/...")
	res := run(t, pkgs)

	for _, f := range res.Findings {
		t.Errorf("tree not clean: %s", f)
	}

	known := map[string]bool{}
	for _, name := range lint.RuleNames() {
		known[name] = true
	}
	for _, d := range res.Directives {
		where := d.Pos.String()
		if !known[d.Rule] {
			t.Errorf("%s: allow directive names unknown rule %q", where, d.Rule)
		}
		if d.Reason == "" {
			t.Errorf("%s: allow directive for %s has no reason; the justification is mandatory", where, d.Rule)
		}
		if !d.Used {
			t.Errorf("%s: stale allow directive for %s suppresses nothing; delete it", where, d.Rule)
		}
	}
}
