// Command raha-lint is the thin driver over internal/lint, the repository's
// static-analysis framework. It enforces, beyond go vet, the conventions
// this codebase relies on for correctness and reproducibility:
//
//	float-cmp       no == / != between two non-constant floats — order them
//	                or compare against a tolerance.
//	hot-loop-time   no time.* or math/rand calls inside loops of the solver
//	                packages (internal/lp, internal/milp).
//	ctx-first       context.Context, when a function takes one, is the
//	                first parameter.
//	mutex-value     no sync.Mutex / sync.RWMutex / sync.WaitGroup received
//	                or passed by value.
//	tracer-guard    calls to an obs.Tracer-shaped interface's Emit are nil
//	                guarded — nil is the documented "tracing off" value.
//	atomic-mix      a field accessed via sync/atomic anywhere must never be
//	                accessed plainly elsewhere (whole-program, via facts).
//	lock-order      the interprocedural mutex-acquisition graph must be
//	                acyclic; any cycle is a potential deadlock.
//	goroutine-leak  every go statement needs a visible lifetime bound:
//	                WaitGroup Done, channel receive, ctx.Done, or a joined
//	                close.
//	hot-alloc       no allocation sites (make/new, growing append,
//	                composite literals, closures) inside loops of the
//	                solver packages.
//	err-drop        no silently discarded error results outside tests;
//	                `_ = f()` marks a deliberate drop.
//
// A finding is suppressed by a `//raha:lint-allow <rule> <why>` comment on
// the same line or the line above; the justification is mandatory and the
// test suite audits every directive in the tree (existing rule, non-empty
// reason, actually suppresses something).
//
// Usage:
//
//	raha-lint [-json] [-rules rule,rule,...] [packages...]   # defaults to ./...
//
// -json writes a machine-readable report to stdout (stable finding IDs,
// paths relative to the working directory) and, when findings exist, the
// human-readable file:line lines to stderr so CI logs stay greppable.
// -rules restricts the run to a comma-separated subset of the rules above.
//
// Exit status is 0 when clean, 1 when findings were reported, 2 when the
// packages failed to load or type-check. Implemented entirely with the
// standard library: `go list -export` supplies export data for dependencies
// and each linted package is type-checked from source, test files included.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"raha/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "write a machine-readable report to stdout")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: raha-lint [-json] [-rules rule,...] [packages...]\nrules: %s\n",
			strings.Join(lint.RuleNames(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var ruleNames []string
	if *rules != "" {
		ruleNames = strings.Split(*rules, ",")
	}

	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raha-lint: %v\n", err)
		os.Exit(2)
	}
	res, err := lint.Run(pkgs, ruleNames)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raha-lint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		wd, _ := os.Getwd()
		if err := lint.WriteJSON(os.Stdout, res.Findings, wd); err != nil {
			fmt.Fprintf(os.Stderr, "raha-lint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range res.Findings {
			fmt.Fprintln(os.Stderr, f)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
	}
	if n := len(res.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "raha-lint: %d finding(s) in %d package(s)\n", n, res.Packages)
		os.Exit(1)
	}
}
