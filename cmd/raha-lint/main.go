// Command raha-lint is the repository's project-specific linter. It
// enforces, beyond go vet, the handful of conventions this codebase relies
// on for correctness and reproducibility:
//
//	float-cmp      no == / != between two non-constant floats — order them
//	               or compare against a tolerance.
//	hot-loop-time  no time.* or math/rand calls inside loops of the solver
//	               packages (internal/lp, internal/milp); wall-clock and
//	               randomness belong on node boundaries and in the seeded
//	               sampler, never in the simplex or branch-and-bound inner
//	               loops.
//	ctx-first      context.Context, when a function takes one, is the first
//	               parameter.
//	mutex-value    no sync.Mutex / sync.RWMutex / sync.WaitGroup received
//	               or passed by value.
//	tracer-guard   calls to an obs.Tracer-shaped interface's Emit are nil
//	               guarded — nil is the documented "tracing off" value.
//
// A finding is suppressed by a `//raha:lint-allow <rule> <why>` comment on
// the same line or the line above; the justification is mandatory by
// convention and reviewed like any other comment.
//
// Usage:
//
//	raha-lint [packages...]   # defaults to ./...
//
// Exit status is 0 when clean, 1 when findings were reported, 2 when the
// packages failed to load or type-check. Implemented entirely with the
// standard library (go/ast, go/parser, go/types): `go list -export` supplies
// export data for dependencies and each linted package is type-checked from
// source, test files included.
package main

import (
	"fmt"
	"os"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raha-lint: %v\n", err)
		os.Exit(2)
	}
	total := 0
	for _, p := range pkgs {
		for _, f := range lintPackage(p) {
			fmt.Println(f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "raha-lint: %d finding(s) in %d package(s)\n", total, len(pkgs))
		os.Exit(1)
	}
}
