package raha_test

import (
	"context"
	"testing"
	"time"

	"raha"
)

// TestSweepFacade runs a one-cell sweep over the built-in fleet through the
// public surface and checks the report is coherent.
func TestSweepFacade(t *testing.T) {
	grid, err := raha.ParseSweepGrid("k=1;p=1e-3;d=peak")
	if err != nil {
		t.Fatal(err)
	}
	sources := raha.SweepBuiltins()
	rep, err := raha.SweepContext(context.Background(), raha.SweepConfig{
		Sources:       sources,
		Grid:          grid,
		Tolerance:     0.05,
		BudgetPerTopo: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TopoCount != len(sources) || rep.TopoFailed != 0 {
		t.Fatalf("report: %d topologies, %d failed; want %d/0", rep.TopoCount, rep.TopoFailed, len(sources))
	}
	if rep.CellsOK != len(sources) || rep.CellsFailed != 0 {
		t.Fatalf("cells: %d ok / %d failed, want %d/0", rep.CellsOK, rep.CellsFailed, len(sources))
	}
	if len(rep.Ranking) != len(sources) {
		t.Fatalf("ranking has %d entries, want %d", len(rep.Ranking), len(sources))
	}
	for i := 1; i < len(rep.Ranking); i++ {
		if rep.Ranking[i].Normalized > rep.Ranking[i-1].Normalized {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
	if rep.CellsPerMin <= 0 {
		t.Error("cells/min not computed")
	}
}

// TestSweepSyntheticSources pins the synthetic source family: deterministic
// names, loadable topologies, sizes growing with the index.
func TestSweepSyntheticSources(t *testing.T) {
	sources := raha.SweepSynthetic(3, 7)
	if len(sources) != 3 {
		t.Fatalf("want 3 sources, got %d", len(sources))
	}
	prevNodes := 0
	for i, s := range sources {
		top, err := s.Load()
		if err != nil {
			t.Fatalf("source %d (%s): %v", i, s.Name, err)
		}
		if !top.Connected() {
			t.Errorf("source %s is disconnected", s.Name)
		}
		if top.NumNodes() <= prevNodes {
			t.Errorf("source %s: %d nodes, want more than %d", s.Name, top.NumNodes(), prevNodes)
		}
		prevNodes = top.NumNodes()
		// Loaders are reusable and deterministic.
		again, err := s.Load()
		if err != nil || again.NumNodes() != top.NumNodes() || again.NumLinks() != top.NumLinks() {
			t.Errorf("source %s: reload differs (%v)", s.Name, err)
		}
	}
}
