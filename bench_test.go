// Benchmarks regenerating every table and figure of the paper's evaluation
// (§8, Appendix D). Each benchmark prints the rows/series its figure
// reports; EXPERIMENTS.md records paper-vs-measured shapes. Run with an
// explicit timeout — the full suite drives hundreds of MILP solves:
//
//	go test -bench=. -benchmem -timeout 120m .
//
// cmd/raha-experiments regenerates the same data as CSV with configurable
// budgets.
package raha

import (
	"fmt"
	"testing"
	"time"

	"raha/internal/experiments"
)

// benchBudget is the per-analysis solver budget used by the benchmarks —
// the analogue of the paper's Gurobi timeout, scaled to our from-scratch
// solver and the moderated instance sizes (see EXPERIMENTS.md).
const benchBudget = 3 * time.Second

// benchThresholds is the probability sweep used across figures (the paper
// sweeps 1e-1 .. 1e-7).
var benchThresholds = []float64{1e-1, 1e-3, 1e-5, 1e-7}

// benchKs is the failure-budget sweep: the prior-work baselines k ∈ {1,2,4}
// plus Raha's unconstrained mode (0 = ∞).
var benchKs = []int{1, 2, 4, 0}

func header(name, cols string) {
	fmt.Printf("\n== %s ==\n%s\n", name, cols)
}

// BenchmarkFigure1 regenerates the motivating example: fixed demand vs the
// naive worst demand vs Raha's joint search on the §2.1 network.
func BenchmarkFigure1(b *testing.B) {
	top := Figure1()
	bn, _ := top.NodeByName("B")
	cn, _ := top.NodeByName("C")
	dn, _ := top.NodeByName("D")
	pairs := [][2]Node{{bn, dn}, {cn, dn}}
	base := Matrix{{Src: bn, Dst: dn, Volume: 12}, {Src: cn, Dst: dn, Volume: 10}}

	type row struct {
		name                 string
		healthy, failed, gap float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		dps, err := ComputePaths(top, pairs, 2, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		rows = rows[:0]
		fixed, err := Analyze(Config{Topo: top, Demands: dps, Envelope: Fixed(base), MaxFailures: 1})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{"fixed-demand", fixed.Healthy.Objective, fixed.Failed.Objective, fixed.Degradation})
		naive, err := Analyze(Config{Topo: top, Demands: dps, Envelope: Around(base, 0.5), Mode: FailedOnly, MaxFailures: 1, QuantBits: 3})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{"naive-worst", naive.Healthy.Objective, naive.Failed.Objective, naive.Healthy.Objective - naive.Failed.Objective})
		raha, err := Analyze(Config{Topo: top, Demands: dps, Envelope: Around(base, 0.5), MaxFailures: 1, QuantBits: 3})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, row{"raha", raha.Healthy.Objective, raha.Failed.Objective, raha.Degradation})
	}
	header("Figure 1 (motivating example)", "scenario        healthy  failed  degradation")
	for _, r := range rows {
		fmt.Printf("%-15s %7.1f %7.1f %12.1f\n", r.name, r.healthy, r.failed, r.gap)
	}
	if rows[2].gap <= rows[1].gap {
		b.Fatalf("Raha (%g) must beat the naive baseline (%g)", rows[2].gap, rows[1].gap)
	}
}

// BenchmarkFigure2 regenerates the probable-simultaneous-failures curve on
// the production stand-in.
func BenchmarkFigure2(b *testing.B) {
	top := AfricaWAN()
	thresholds := []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	var rows []experiments.Fig2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure2(top, thresholds)
	}
	header("Figure 2 (max simultaneous link failures vs threshold)", "threshold  max-failures")
	for _, r := range rows {
		fmt.Printf("%9.0e  %12d\n", r.Threshold, r.MaxFailures)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxFailures > rows[i-1].MaxFailures {
			b.Fatal("curve must be nonincreasing in the threshold")
		}
	}
	if rows[0].MaxFailures < 3 {
		b.Fatalf("k ≤ 2 misses probable scenarios: expected ≥ 3 at 1e-5, got %d", rows[0].MaxFailures)
	}
}

// BenchmarkFigure3 compares Raha against the fixed-demand baselines over
// slack.
func BenchmarkFigure3(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		s := experiments.Production(benchBudget)
		var err error
		rows, err = experiments.Figure3(s, []float64{0, 0.4, 0.8, 1.4}, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
	}
	header("Figure 3 (Raha vs naive baselines over slack)", "slack%  raha   max    avg")
	for _, r := range rows {
		fmt.Printf("%5.0f  %5.2f  %5.2f  %5.2f\n", r.Slack*100, r.Raha, r.Max, r.Avg)
	}
	// Raha's joint search must dominate both baselines at every slack.
	for _, r := range rows {
		if r.Raha < r.Max-1e-6 || r.Raha < r.Avg-1e-6 {
			b.Fatalf("Raha %.3f fell below a baseline (max %.3f, avg %.3f) at slack %.0f%%", r.Raha, r.Max, r.Avg, r.Slack*100)
		}
	}
}

// BenchmarkFixedDemandRuntime reproduces §8.5's claim that fixed-demand
// analysis is fast and stable regardless of the setting — here on the
// full-size (76-node / 334-LAG / 382-link) production stand-in.
func BenchmarkFixedDemandRuntime(b *testing.B) {
	var rows []experiments.RuntimeRow
	for i := 0; i < b.N; i++ {
		s := experiments.Africa(0)
		var err error
		rows, err = experiments.FixedRuntime(s, 2, []float64{1e-2, 1e-4, 1e-6})
		if err != nil {
			b.Fatal(err)
		}
	}
	header("§8.5 fixed-demand runtime (AfricaWAN stand-in)", "threshold  runtime       degradation")
	for _, r := range rows {
		fmt.Printf("%9.0e  %-12v  %.3f\n", r.Value, r.Runtime.Round(time.Millisecond), r.Degradation)
	}
	for _, r := range rows {
		if r.Runtime > 2*time.Minute {
			b.Fatalf("fixed-demand run took %v; the paper's point is that this path is fast", r.Runtime)
		}
	}
}

// BenchmarkMLUDegradation reproduces §8.5 "on other objectives".
func BenchmarkMLUDegradation(b *testing.B) {
	var rows []experiments.MLURow
	for i := 0; i < b.N; i++ {
		s := experiments.Production(benchBudget)
		var err error
		rows, err = experiments.MLUSlack(s, []float64{0, 0.1, 0.2, 0.4}, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
	}
	header("§8.5 worst-case MLU degradation vs slack", "slack%  degradation  runtime")
	for _, r := range rows {
		fmt.Printf("%5.0f  %11.3f  %v\n", r.Slack*100, r.Degradation, r.Runtime.Round(time.Millisecond))
	}
	if rows[len(rows)-1].Degradation < rows[0].Degradation-1e-6 {
		b.Fatal("MLU degradation must not shrink with slack")
	}
}

// BenchmarkMaxMinDegradation exercises the Appendix A max-min (geometric
// binner) objective: worst-case binned-utility degradation vs slack.
func BenchmarkMaxMinDegradation(b *testing.B) {
	type row struct {
		slack float64
		deg   float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		s := experiments.Production(benchBudget)
		dps, err := ComputePaths(s.Topo, s.Pairs, s.Primary, s.Backup, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, slack := range []float64{0, 0.25, 0.5} {
			res, err := Analyze(Config{
				Topo:          s.Topo,
				Demands:       dps,
				Envelope:      UpTo(s.Base, slack),
				Objective:     MaxMin,
				ProbThreshold: 1e-4,
				QuantBits:     2,
				Solver:        SolverParams{TimeLimit: benchBudget},
			})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{slack, res.Degradation})
		}
	}
	header("Appendix A max-min (geometric binner) degradation vs slack", "slack%  degradation (binned utility)")
	for _, r := range rows {
		fmt.Printf("%5.0f  %11.1f\n", r.slack*100, r.deg)
	}
	if rows[len(rows)-1].deg < rows[0].deg-1e-6 {
		b.Fatal("max-min degradation must not shrink with slack")
	}
}
