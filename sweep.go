package raha

import (
	"context"

	"raha/internal/batch"
)

// --- Fleet sweeps --------------------------------------------------------------
//
// A sweep runs the two-phase alert check (see Alert) over a whole fleet of
// topologies crossed with a grid of analysis settings, shards the work
// across a bounded worker pool, and tolerates partial failure: one
// malformed GML file, panicking generator, or exhausted budget becomes a
// recorded failure in the report, never a dead sweep. Every cell
// self-checks its solver invariants. See DESIGN.md §2.10.

// SweepConfig parameterizes a fleet sweep (see batch.Config for field docs).
type SweepConfig = batch.Config

// SweepSource is one topology of the fleet: a name, a kind, and a lazy
// loader that may fail without harming the rest of the sweep.
type SweepSource = batch.Source

// SweepGrid is the per-topology cell matrix: k-failure depths × probability
// thresholds × demand models.
type SweepGrid = batch.Grid

// SweepCell is one point of the grid.
type SweepCell = batch.Cell

// SweepDemandModel shapes the demand side of a sweep cell.
type SweepDemandModel = batch.DemandModel

// SweepReport is a finished sweep: per-topology results, the ranked
// most-fragile-topologies list, every recorded failure, and throughput.
type SweepReport = batch.Report

// SweepTopoResult is one topology's sweep outcome.
type SweepTopoResult = batch.TopoResult

// SweepCellResult is one grid cell's outcome on one topology.
type SweepCellResult = batch.CellResult

// SweepFailure is one recorded partial result of a sweep.
type SweepFailure = batch.Failure

// FragilityEntry is one row of the ranked "most fragile topologies" report.
type FragilityEntry = batch.FragilityEntry

// Sweep runs a fleet sweep to completion. Per-topology failures are
// recorded in the report; only configuration mistakes return an error.
func Sweep(cfg SweepConfig) (*SweepReport, error) {
	return batch.Run(context.Background(), cfg)
}

// SweepContext is Sweep under a context: cancellation stops scheduling new
// topologies and returns the partial report (Cancelled set) without error.
func SweepContext(ctx context.Context, cfg SweepConfig) (*SweepReport, error) {
	return batch.Run(ctx, cfg)
}

// SweepBuiltins returns the four built-in paper topologies as sweep sources.
func SweepBuiltins() []SweepSource { return batch.Builtins() }

// SweepZooDir lists every Topology Zoo GML file under dir as a lazily
// parsed sweep source, sorted by filename for stable shard assignment.
func SweepZooDir(dir string) ([]SweepSource, error) { return batch.ZooDir(dir) }

// SweepSynthetic returns n seeded random WANs of growing size.
func SweepSynthetic(n int, baseSeed int64) []SweepSource { return batch.Synthetic(n, baseSeed) }

// DefaultSweepGrid is the standard 2×2×2 cell matrix.
func DefaultSweepGrid() SweepGrid { return batch.DefaultGrid() }

// ParseSweepGrid parses a "k=0,2;p=1e-4,1e-3;d=peak,elastic" grid spec;
// omitted dimensions take the default grid's values.
func ParseSweepGrid(spec string) (SweepGrid, error) { return batch.ParseGrid(spec) }

// SweepDemandModelNames lists the named demand models a grid spec may
// select.
func SweepDemandModelNames() []string { return batch.DemandModelNames() }
